// Command delphi runs a live Delphi cluster.
//
// In-process mode (default) spawns n nodes as goroutines connected by
// HMAC-authenticated in-memory channels, feeds them inputs around a centre
// value, and prints each node's output:
//
//	delphi -n 7 -f 2 -center 41000 -spread 20
//
// TCP mode runs one node of a multi-process cluster; peers are listed as a
// comma-separated address list (index = node id):
//
//	delphi -tcp -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,... -input 41003
//
// With -oracle, nodes additionally run the DORA certificate round and print
// an attested, t+1-signed value.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"delphi"
	"delphi/internal/auth"
	"delphi/internal/codec"
	"delphi/internal/core"
	"delphi/internal/node"
	"delphi/internal/runtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "delphi:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("delphi", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 7, "number of nodes (in-process mode)")
		f       = fs.Int("f", 2, "fault bound t (n >= 3t+1)")
		center  = fs.Float64("center", 41000, "centre of generated inputs")
		spread  = fs.Float64("spread", 20, "range of generated inputs")
		rho0    = fs.Float64("rho0", 2, "level-0 separator ρ0")
		delta   = fs.Float64("delta", 2000, "maximum honest range Δ")
		eps     = fs.Float64("eps", 2, "agreement distance ε")
		seed    = fs.Int64("seed", 1, "input generation seed")
		oracle  = fs.Bool("oracle", false, "run the DORA certificate round")
		timeout = fs.Duration("timeout", 2*time.Minute, "run deadline")

		tcp    = fs.Bool("tcp", false, "TCP mode: run a single node")
		id     = fs.Int("id", 0, "this node's id (TCP mode)")
		peers  = fs.String("peers", "", "comma-separated peer addresses (TCP mode)")
		input  = fs.Float64("input", 0, "this node's input (TCP mode)")
		master = fs.String("master", "delphi-demo-master", "shared channel-key secret")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := delphi.Config{
		Config: delphi.System{N: *n, F: *f},
		Params: delphi.Params{S: 0, E: 1e9, Rho0: *rho0, Delta: *delta, Eps: *eps},
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *tcp {
		return runTCP(ctx, cfg, *id, *peers, *input, *master)
	}
	return runInProcess(ctx, cfg, *center, *spread, *seed, *oracle)
}

func runInProcess(ctx context.Context, cfg delphi.Config, center, spread float64, seed int64, oracle bool) error {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]float64, cfg.N)
	for i := range inputs {
		inputs[i] = center + (rng.Float64()-0.5)*spread
	}
	fmt.Printf("cluster: n=%d t=%d  ρ0=%g Δ=%g ε=%g  (r_M=%d rounds, l_M=%d levels)\n",
		cfg.N, cfg.F, cfg.Params.Rho0, cfg.Params.Delta, cfg.Params.Eps,
		cfg.Params.Rounds(cfg.N), cfg.Params.Levels())
	for i, v := range inputs {
		fmt.Printf("  node %2d input  %.4f\n", i, v)
	}

	start := time.Now()
	if oracle {
		certs, err := delphi.RunLiveOracles(ctx, cfg, inputs, 42)
		if err != nil {
			return err
		}
		for i, c := range certs {
			if c == nil {
				fmt.Printf("  node %2d: no certificate\n", i)
				continue
			}
			if err := delphi.VerifyCertificate(c, cfg.N, cfg.F, 42); err != nil {
				return fmt.Errorf("node %d certificate: %w", i, err)
			}
			fmt.Printf("  node %2d attested %.4f (%d signers, verified)\n", i, c.Value, len(c.Signers))
		}
	} else {
		results, err := delphi.RunLive(ctx, cfg, inputs)
		if err != nil {
			return err
		}
		for i, r := range results {
			if r == nil {
				fmt.Printf("  node %2d: no output\n", i)
				continue
			}
			fmt.Printf("  node %2d output %.6f\n", i, r.Output)
		}
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runTCP(ctx context.Context, cfg delphi.Config, id int, peerList string, input float64, master string) error {
	addrs := strings.Split(peerList, ",")
	if len(addrs) != cfg.N {
		return fmt.Errorf("need %d peer addresses, got %d", cfg.N, len(addrs))
	}
	if id < 0 || id >= cfg.N {
		return fmt.Errorf("id %d out of range", id)
	}
	proc, err := core.New(cfg, input)
	if err != nil {
		return err
	}
	a, err := auth.New(node.ID(id), cfg.N, []byte(master))
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return fmt.Errorf("listen %s: %w", addrs[id], err)
	}
	tr := runtime.NewTCP(node.ID(id), addrs, ln, a)
	defer tr.Close()
	reg, err := codec.NewRegistry()
	if err != nil {
		return err
	}
	drv := runtime.NewDriver(cfg.Config, node.ID(id), proc, tr, a, reg)

	done := make(chan struct{})
	var last any
	go func() {
		defer close(done)
		for v := range drv.Outputs() {
			last = v
		}
	}()
	// Give peers a moment to bind before the first broadcast storm.
	time.Sleep(500 * time.Millisecond)
	if err := drv.Run(ctx); err != nil {
		return err
	}
	<-done
	r, ok := last.(delphi.Result)
	if !ok {
		return fmt.Errorf("no result (got %T)", last)
	}
	fmt.Printf("node %d: input %.6f -> output %.6f\n", id, input, r.Output)
	return nil
}
