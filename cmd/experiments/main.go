// Command experiments regenerates the paper's evaluation artefacts: every
// table (I–III) and figure (4–7) plus the §VI-E validity analysis and the
// design ablations, printing the same rows/series the paper reports.
//
// Usage:
//
//	experiments [-scale quick|paper] [-seed N] [-workers K] [-run T1,T2]
//	            [-backend sim|live|tcp] [-sessions=false] [-sim-workers K]
//	            [-service-rounds N] [-service-rate R] [-service-window W]
//	            [-service-queue Q] [-service-duration D] [-service-arrivals poisson|bursty]
//	            [-trace out.json] [-metrics out|-] [-pprof addr]
//	            [-worstcase-objective latency|spread|events|bytes]
//	            [-worstcase-replay] [-worstcase-trace prefix]
//	            [table1 table2 table3 fig4 fig5 fig6a fig6b fig6c fig7
//	             validity tail matrix adversary backends sessions service
//	             trace scale ablations worstcase | all]
//
// Targets are selected positionally or with -run (comma-separated); the
// two compose. Quick scale (default) runs reduced node counts and finishes
// in well under a minute; paper scale uses the paper's axes (n up to 169)
// and can take tens of minutes on one core. Trials fan out across
// bench.Engine's worker pool (GOMAXPROCS workers unless -workers is set);
// results — including the adversary sweep's adversarial schedules — are
// identical at any worker count.
//
// -backend retargets every RunSpec-driven workload onto an execution
// backend: the discrete-event simulator (default), an in-process goroutine
// cluster (live), or a loopback TCP cluster (tcp). Live backends measure
// wall-clock time, so their latency columns are real, non-deterministic
// durations. The backends target cross-validates protocol outputs across
// backends regardless of the flag.
//
// -sim-workers routes every simulator run through the parallel window
// executor with that many shard workers (0, the default, keeps the
// sequential loop). Parallel runs are deterministic across reruns and
// worker counts but tie-break differently from the sequential loop, so
// they agree with it statistically (δ-window), not byte for byte. The
// scale target measures the n=1000+ curve, sequential versus parallel,
// regardless of the flag.
//
// Backends run trials through persistent sessions by default: each engine
// worker keeps one substrate per cell (the tcp backend's listeners, the
// live backend's hub, the simulator's event-queue storage) alive across
// that cell's trials. -sessions=false forces per-trial setup; results are
// identical either way. The sessions target smoke-runs a 3-trial tcp cell
// through a session.
//
// The service target runs the continuous-service oracle mode: an open-loop
// arrival process of agreement rounds (-service-rate rounds/s,
// -service-arrivals poisson or bursty) over one persistent substrate, a
// bounded window of concurrent in-flight rounds (-service-window) with a
// bounded waiting queue (-service-queue; overflow is shed), fanning decided
// rounds out to a modeled million-client subscriber population. On the sim
// backend the report is deterministic (byte-identical across reruns and
// worker counts); on live/tcp it is a real wall-clock soak, optionally
// capped by -service-duration.
//
// Observability: -trace attaches a recorder to the instrumented targets
// (service, trace) and writes everything captured as Chrome trace-event
// JSON — load it in Perfetto or chrome://tracing. Protocol phases land on
// per-node tracks, the service's round lifecycle on a "service" track.
// -metrics writes the run's metrics-registry snapshot ("-" for text on
// stdout, a *.json path for JSON, any other path for text). The trace
// target runs one instrumented simulator trial; its trace bytes are
// identical across reruns and -sim-workers counts. -pprof serves
// net/http/pprof on the given address for profiling live runs.
//
// The worstcase target searches the adversary space (kind × severity ×
// onset × adaptivity) for each protocol's empirical worst case on the
// simulator — successive halving plus simulated annealing, every probe
// seeded from -seed — and prints the resulting profiles: the winning
// configuration, its score against clean and the best fixed preset, and
// the search trajectory. The output is byte-identical across reruns and
// -sim-workers counts (scripts/ci.sh gates exactly that).
// -worstcase-objective picks the maximised damage metric;
// -worstcase-trace PREFIX writes each winner's evidence trace to
// PREFIX-<protocol>.json; -worstcase-replay validates each winner on the
// loopback-tcp backend (deadline-bounded, wall-clock, non-deterministic —
// the replay lines print only under this flag).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	// Serve profiling endpoints on the -pprof address.
	_ "net/http/pprof"

	// Register the live execution backends (live, tcp) with bench.
	_ "delphi/internal/backend"

	"delphi/internal/advsearch"
	"delphi/internal/bench"
	"delphi/internal/core"
	"delphi/internal/dist"
	"delphi/internal/feeds"
	"delphi/internal/obs"
	"delphi/internal/sim"
)

// svcFlags carries the service target's knobs from flag parsing to
// dispatch; the initialisers are the flag defaults.
var svcFlags = struct {
	rounds   int
	rate     float64
	window   int
	queue    int
	duration time.Duration
	arrivals string
}{rounds: 200, rate: 100, window: 4, queue: 16, arrivals: "poisson"}

// worstFlags carries the worstcase target's knobs.
var worstFlags = struct {
	objective string
	replay    bool
	trace     string
}{objective: "latency"}

// obsRec is the run's shared recorder, created when -trace or -metrics asks
// for one; the instrumented targets (service, trace) attach it. Nil keeps
// every hook a free no-op.
var obsRec *obs.Recorder

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "quick", "experiment scale: quick, medium, or paper")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS)")
	runFlag := fs.String("run", "", "comma-separated targets to run (adds to positional targets)")
	backendFlag := fs.String("backend", "sim", "execution backend for the workloads: sim, live, or tcp")
	sessions := fs.Bool("sessions", true, "reuse backend substrates (listeners, hubs, sim storage) across a cell's trials")
	simWorkers := fs.Int("sim-workers", 0, "parallel window executor shard workers for sim runs (0 = sequential)")
	fs.IntVar(&svcFlags.rounds, "service-rounds", svcFlags.rounds, "service target: arrivals to generate")
	fs.Float64Var(&svcFlags.rate, "service-rate", svcFlags.rate, "service target: arrival rate, rounds per second")
	fs.IntVar(&svcFlags.window, "service-window", svcFlags.window, "service target: max concurrent in-flight rounds")
	fs.IntVar(&svcFlags.queue, "service-queue", svcFlags.queue, "service target: waiting-room bound; overflow is shed")
	fs.DurationVar(&svcFlags.duration, "service-duration", svcFlags.duration, "service target: wall-clock cap on a live run (0 = none)")
	fs.StringVar(&svcFlags.arrivals, "service-arrivals", svcFlags.arrivals, "service target: interarrival law, poisson or bursty")
	fs.StringVar(&worstFlags.objective, "worstcase-objective", worstFlags.objective, "worstcase target: maximised metric, latency, spread, events, or bytes")
	fs.BoolVar(&worstFlags.replay, "worstcase-replay", worstFlags.replay, "worstcase target: validate each winner on the loopback-tcp backend (wall-clock)")
	fs.StringVar(&worstFlags.trace, "worstcase-trace", worstFlags.trace, "worstcase target: write each winner's evidence trace to PREFIX-<protocol>.json")
	traceFlag := fs.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the instrumented targets")
	metricsFlag := fs.String("metrics", "", "write the metrics snapshot: '-' for text on stdout, *.json for JSON, else text to the path")
	pprofFlag := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofFlag != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "experiments: pprof:", http.ListenAndServe(*pprofFlag, nil))
		}()
	}
	obsRec = nil
	if *traceFlag != "" || *metricsFlag != "" {
		obsRec = obs.New()
	}
	bench.SetDefaultWorkers(*workers)
	bench.SetDefaultSessions(*sessions)
	bench.SetDefaultSimWorkers(*simWorkers)
	if err := bench.SetDefaultBackend(bench.BackendKind(*backendFlag)); err != nil {
		return err
	}
	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "medium":
		scale = bench.Medium
	case "paper":
		scale = bench.Paper
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	targets := fs.Args()
	for _, t := range strings.Split(*runFlag, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = []string{"fig4", "fig5", "table1", "table2", "table3",
			"fig6a", "fig6b", "fig6c", "fig7", "validity", "tail",
			"matrix", "adversary", "backends", "sessions", "service",
			"trace", "scale", "ablations"}
	}

	for _, target := range targets {
		start := time.Now()
		text, err := runTarget(target, scale, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		fmt.Println(strings.TrimRight(text, "\n"))
		fmt.Printf("[%s completed in %s]\n\n", target, time.Since(start).Round(time.Millisecond))
	}
	return writeObs(obsRec, *traceFlag, *metricsFlag)
}

// writeObs renders what the run's recorder captured: the trace as Chrome
// trace-event JSON, the metrics snapshot as text or JSON by path.
func writeObs(rec *obs.Recorder, tracePath, metricsPath string) error {
	if rec == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("write trace %s: %w", tracePath, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("[trace: %d events -> %s]\n", rec.EventCount(), tracePath)
	}
	if metricsPath != "" {
		snap := rec.Snapshot()
		if metricsPath == "-" {
			return snap.WriteText(os.Stdout)
		}
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		write := snap.WriteText
		if strings.HasSuffix(metricsPath, ".json") {
			write = snap.WriteJSON
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("write metrics %s: %w", metricsPath, err)
		}
		return f.Close()
	}
	return nil
}

func runTarget(target string, scale bench.Scale, seed int64) (string, error) {
	switch target {
	case "table1":
		t, err := bench.Table1(scale, seed)
		if err != nil {
			return "", err
		}
		return t.Text, nil
	case "table2":
		t, err := bench.Table2(scale, seed)
		if err != nil {
			return "", err
		}
		return t.Text, nil
	case "table3":
		t, err := bench.Table3(scale, seed)
		if err != nil {
			return "", err
		}
		return t.Text, nil
	case "fig4":
		r, err := bench.Fig4(seed)
		if err != nil {
			return "", err
		}
		return r.Text, nil
	case "fig5":
		r, err := bench.Fig5(seed)
		if err != nil {
			return "", err
		}
		return r.Text, nil
	case "fig6a":
		f, err := bench.Fig6a(scale, seed)
		if err != nil {
			return "", err
		}
		return f.Text, nil
	case "fig6b":
		f, err := bench.Fig6b(scale, seed)
		if err != nil {
			return "", err
		}
		return f.Text, nil
	case "fig6c":
		f, err := bench.Fig6c(scale, seed)
		if err != nil {
			return "", err
		}
		return f.Text, nil
	case "fig7":
		aws, cps, err := bench.Fig7(scale, seed)
		if err != nil {
			return "", err
		}
		return aws.Text + "\n" + cps.Text, nil
	case "validity":
		reps, err := bench.Validity(scale, seed)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString("validity (§VI-E) — distance from honest mean\n")
		for _, r := range reps {
			b.WriteString(r.Text + "\n")
		}
		return b.String(), nil
	case "tail":
		rep, err := bench.LatencyTail(scale, seed)
		if err != nil {
			return "", err
		}
		return rep.Text, nil
	case "matrix":
		return runMatrix(scale, seed)
	case "adversary":
		rep, err := bench.AdversarySweep(scale, seed)
		if err != nil {
			return "", err
		}
		return rep.Text, nil
	case "backends":
		return runBackends(scale, seed)
	case "sessions":
		return runSessions(scale, seed)
	case "service":
		return runService(scale, seed)
	case "trace":
		return runTrace(scale, seed)
	case "scale":
		rep, err := bench.ScaleSweep(scale, 8, seed)
		if err != nil {
			return "", err
		}
		return rep.Text, nil
	case "ablations":
		return runAblations(seed)
	case "worstcase":
		return runWorstcase(scale, seed)
	default:
		return "", fmt.Errorf("unknown target (want table1..3, fig4..7, validity, tail, matrix, adversary, backends, sessions, service, trace, scale, ablations, worstcase)")
	}
}

// runBackends demonstrates the execution-backend axis: first the
// cross-backend validator (identical RunSpecs on the simulator and a live
// goroutine cluster must produce outputs in the same agreement window; the
// tcp backend joins above quick scale), then one Delphi matrix whose cells
// cross input shapes with backends. Simulator cells report virtual latency;
// live cells report real wall time and are excluded from byte-identity
// expectations.
func runBackends(scale bench.Scale, seed int64) (string, error) {
	kinds := []bench.BackendKind{bench.BackendSim, bench.BackendLive}
	if scale != bench.Quick {
		kinds = append(kinds, bench.BackendTCP)
	}
	rep, err := bench.DefaultEngine().ValidateCrossBackend(kinds, scale, seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(rep.Text)
	if !rep.OK() {
		return b.String(), fmt.Errorf("cross-backend validation failed:\n%s", rep.Text)
	}

	trials := 2
	if scale != bench.Quick {
		trials = 4
	}
	m := bench.Matrix{
		Base: bench.Scenario{
			Protocol: bench.ProtoDelphi,
			Params:   core.Params{S: 0, E: 100000, Rho0: 2, Delta: 256, Eps: 2},
			Env:      sim.AWS(),
			N:        8,
			Center:   41000,
			Delta:    20,
			Trials:   trials,
		},
		Shapes:   []bench.InputShape{bench.ShapePinned, bench.ShapeClustered},
		Backends: kinds,
	}
	cells, err := bench.DefaultEngine().RunMatrix(m, seed)
	if err != nil {
		return "", err
	}
	b.WriteString("\nbackend matrix — Delphi, mean over trials\n")
	b.WriteString("  (lat: virtual time on sim cells, wall time to decision on live cells)\n")
	fmt.Fprintf(&b, "  %-40s %10s %10s %10s %10s\n", "cell", "lat(ms)", "wall(ms)", "MB", "spread")
	for _, c := range cells {
		wall := "-"
		if c.Agg.WallMS.N() > 0 {
			wall = fmt.Sprintf("%.1f", c.Agg.WallMS.Mean())
		}
		fmt.Fprintf(&b, "  %-40s %10.0f %10s %10.2f %10.3g\n",
			c.Scenario.Name, c.Agg.LatencyMS.Mean(), wall, c.Agg.MB.Mean(), c.Agg.Spread.Mean())
	}
	return b.String(), nil
}

// runSessions smoke-runs the persistent-session path end to end: one
// 3-trial (quick) Delphi cell on the tcp backend through the engine, whose
// workers keep the cell's listeners and connections bound across trials.
// Per-trial agreement must hold on every trial; the printed wall times are
// real and non-deterministic.
func runSessions(scale bench.Scale, seed int64) (string, error) {
	trials := 3
	n := 8
	if scale != bench.Quick {
		trials, n = 10, 16
	}
	spec := bench.RunSpec{
		Protocol: bench.ProtoDelphi,
		N:        n,
		F:        (n - 1) / 3,
		Env:      sim.AWS(),
		Seed:     seed,
		Inputs:   bench.OracleInputs(n, 41000, 20, seed),
		Delphi:   core.Params{S: 0, E: 100000, Rho0: 2, Delta: 64, Eps: 2},
		Backend:  bench.BackendTCP,
	}
	stats, err := bench.DefaultEngine().RunTrials(spec, trials)
	if err != nil {
		return "", err
	}
	agg := bench.NewAggregate(false)
	for _, st := range stats {
		agg.Observe(st)
	}
	mode := "one persistent cluster per worker"
	if bench.DefaultEngine().DisableSessions {
		mode = "per-trial setup (sessions disabled)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tcp session smoke — %d trials, n=%d, %s\n", trials, n, mode)
	fmt.Fprintf(&b, "  wall mean %.1f ms   spread max %.3g (ε=%g)   %.2f MB/trial mean\n",
		agg.WallMS.Mean(), agg.Spread.Max(), spec.Delphi.Eps, agg.MB.Mean())
	if agg.Spread.Max() > spec.Delphi.Eps {
		return b.String(), fmt.Errorf("session smoke: agreement violated (spread %g > ε=%g)", agg.Spread.Max(), spec.Delphi.Eps)
	}
	return b.String(), nil
}

// runService drives the continuous-service oracle mode on whatever backend
// -backend selected (the sim model is deterministic; live/tcp are wall-clock
// soaks) and renders the service report: round accounting, backpressure
// high-water marks, latency split, throughput, and subscriber staleness.
func runService(scale bench.Scale, seed int64) (string, error) {
	n := 8
	if scale != bench.Quick {
		n = 16
	}
	cfg := bench.ServiceConfig{
		Scenario: bench.Scenario{
			Name:     "service",
			Protocol: bench.ProtoDelphi,
			N:        n,
			Env:      sim.AWS(),
			Params:   core.Params{S: 0, E: 100000, Rho0: 2, Delta: 64, Eps: 2},
			Center:   41000,
			Delta:    20,
		},
		Rounds:   svcFlags.rounds,
		Rate:     svcFlags.rate,
		Window:   svcFlags.window,
		Queue:    svcFlags.queue,
		Duration: svcFlags.duration,
		Subscribers: feeds.Population{
			Size: 1_000_000, Seed: seed, Base: 5 * time.Millisecond,
			Jitter: dist.Lognormal{Mu: 2, Sigma: 0.5},
		},
		Representatives: 8,
		Obs:             obsRec,
	}
	switch svcFlags.arrivals {
	case "", "poisson":
	case "bursty":
		cfg.Arrivals = bench.ArrivalBursty
	default:
		return "", fmt.Errorf("unknown arrival law %q (want poisson or bursty)", svcFlags.arrivals)
	}
	rep, err := bench.DefaultEngine().RunService(cfg, seed)
	if err != nil {
		return "", err
	}
	return rep.Text(), nil
}

// runTrace runs one instrumented simulator trial: protocol phase spans land
// on per-node virtual-clock tracks, driver flushes and sim internals on
// their own, and the metrics registry collects the counters. It prints the
// metrics snapshot (deterministic on the simulator); -trace captures the
// spans. Without -trace or -metrics it still runs, on its own recorder, so
// the instrumented path is exercised either way. With -sim-workers K the
// trial goes through the parallel executor; the trace bytes are identical
// at any K — scripts/ci.sh gates exactly that.
func runTrace(scale bench.Scale, seed int64) (string, error) {
	rec := obsRec
	if rec == nil {
		rec = obs.New()
	}
	n := 8
	if scale != bench.Quick {
		n = 16
	}
	spec := bench.RunSpec{
		Protocol: bench.ProtoDelphi,
		N:        n,
		F:        (n - 1) / 3,
		Env:      sim.AWS(),
		Seed:     seed,
		Inputs:   bench.OracleInputs(n, 41000, 20, seed),
		Delphi:   core.Params{S: 0, E: 100000, Rho0: 2, Delta: 64, Eps: 2},
		Obs:      rec,
	}
	st, err := bench.Run(spec)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace — Delphi n=%d on the simulator: %d trace events\n", n, rec.EventCount())
	b.WriteString("metrics:\n")
	for _, m := range st.Metrics {
		line := &strings.Builder{}
		_ = obs.Metrics{m}.WriteText(line)
		b.WriteString("  " + line.String())
	}
	return b.String(), nil
}

// runMatrix demonstrates the scenario matrix: Delphi across both testbeds,
// two system sizes, the three input shapes, and the fault axes, as one
// engine batch. Each cell is a struct literal away from a new workload.
func runMatrix(scale bench.Scale, seed int64) (string, error) {
	ns := []int{16}
	trials := 2
	if scale != bench.Quick {
		ns = []int{16, 40}
		trials = 4
	}
	m := bench.Matrix{
		Base: bench.Scenario{
			Protocol: bench.ProtoDelphi,
			// Table I's parameterisation: Δ=256$ keeps every cell subsecond.
			Params:  core.Params{S: 0, E: 100000, Rho0: 2, Delta: 256, Eps: 2},
			Center:  41000,
			Delta:   20,
			ByzKind: bench.ByzSpam,
			Trials:  trials,
		},
		Envs:      []sim.Environment{sim.AWS(), sim.CPS()},
		Ns:        ns,
		Shapes:    []bench.InputShape{bench.ShapePinned, bench.ShapeSkewed, bench.ShapeClustered},
		ByzCounts: []int{0, 1},
	}
	cells, err := bench.DefaultEngine().RunMatrix(m, seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("scenario matrix — Delphi, mean over trials\n")
	fmt.Fprintf(&b, "  %-36s %10s %10s %10s\n", "cell", "lat(ms)", "MB", "spread")
	for _, c := range cells {
		fmt.Fprintf(&b, "  %-36s %10.0f %10.2f %10.3g\n",
			c.Scenario.Name, c.Agg.LatencyMS.Mean(), c.Agg.MB.Mean(), c.Agg.Spread.Mean())
	}
	return b.String(), nil
}

// runWorstcase searches the adversary space for each protocol's empirical
// worst case and prints the profiles. Everything printed here is a pure
// function of (scale, seed, objective) on the simulator; the tcp replay
// lines are real wall-clock measurements and print only under
// -worstcase-replay so the deterministic output stays gateable.
func runWorstcase(scale bench.Scale, seed int64) (string, error) {
	protos := []bench.Protocol{bench.ProtoDelphi, bench.ProtoFIN}
	n, rungs, anneal := 8, 3, 6
	if scale != bench.Quick {
		protos = append(protos, bench.ProtoAbraham)
		n, anneal = 16, 12
	}
	var b strings.Builder
	for _, proto := range protos {
		p, err := advsearch.Search(advsearch.Config{
			Protocol:    proto,
			N:           n,
			Seed:        seed,
			Objective:   advsearch.Objective(worstFlags.objective),
			Rungs:       rungs,
			AnnealSteps: anneal,
		})
		if err != nil {
			return "", err
		}
		b.WriteString(p.Text())
		if worstFlags.trace != "" {
			path := fmt.Sprintf("%s-%s.json", worstFlags.trace, proto)
			if err := os.WriteFile(path, p.Trace, 0o644); err != nil {
				return "", fmt.Errorf("write evidence trace: %w", err)
			}
			fmt.Fprintf(&b, "  [evidence trace: %d events -> %s]\n", p.TraceEvents, path)
		}
		if worstFlags.replay {
			res, err := p.ReplayTCP(advsearch.ReplayConfig{})
			if err != nil {
				return "", fmt.Errorf("tcp replay: %w", err)
			}
			fmt.Fprintf(&b, "  replay  clean=%s worst=%s degraded=%v (attempts %d, scored %d, timed out %d)\n",
				res.CleanWall.Round(time.Millisecond), res.WorstWall.Round(time.Millisecond),
				res.Degraded, res.Attempts, res.Scored, res.TimedOut)
		}
	}
	return b.String(), nil
}

func runAblations(seed int64) (string, error) {
	var b strings.Builder
	single, multi, err := bench.AblationSingleLevel(16, seed)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "ablation: single-level strawman (ρ0=Δ) vs multi-level, n=16 δ=10$\n")
	fmt.Fprintf(&b, "  single-level |out−mean|=%.1f$   multi-level |out−mean|=%.2f$\n",
		single.MeanAbsErr, multi.MeanAbsErr)

	rows, err := bench.AblationEps(16, seed)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "ablation: ε sweep (n=16, δ=20$)\n")
	fmt.Fprintf(&b, "  %-8s %8s %10s %12s %8s\n", "eps", "rounds", "spread", "latency(ms)", "MB")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %8d %10.4g %12.0f %8.2f\n", r.Name, r.Rounds, r.Spread, r.LatencyMS, r.MB)
	}

	comp, plain, err := bench.AblationCompression(16, seed)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "ablation: §II-C wire compression (n=16, δ=20$)\n")
	fmt.Fprintf(&b, "  compressed: %.2f MB   plain: %.2f MB   saving: %.1fx\n",
		float64(comp.TotalBytes)/1e6, float64(plain.TotalBytes)/1e6,
		float64(plain.TotalBytes)/float64(comp.TotalBytes))

	slow, fast, err := bench.AblationCoinCost(16, seed)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "ablation: FIN coin cost on CPS hardware (n=16)\n")
	fmt.Fprintf(&b, "  pairing-class coin: %s   hash-class coin: %s\n",
		slow.Latency.Round(time.Millisecond), fast.Latency.Round(time.Millisecond))

	clean, crashed, byzantine, err := bench.AblationFaults(16, seed)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "ablation: fault load (n=16, δ=20$, f=5)\n")
	fmt.Fprintf(&b, "  clean: %s %.2fMB   f crashes: %s %.2fMB   f byz spammers: %s %.2fMB\n",
		clean.Latency.Round(time.Millisecond), float64(clean.TotalBytes)/1e6,
		crashed.Latency.Round(time.Millisecond), float64(crashed.TotalBytes)/1e6,
		byzantine.Latency.Round(time.Millisecond), float64(byzantine.TotalBytes)/1e6)

	advRows, err := bench.AblationAdversary(16, seed)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "ablation: network adversary (Delphi, n=16, δ=20$)\n")
	fmt.Fprintf(&b, "  %-14s %12s %8s %10s\n", "adversary", "latency(ms)", "MB", "spread")
	for _, r := range advRows {
		fmt.Fprintf(&b, "  %-14s %12.0f %8.2f %10.3g\n", r.Name, r.LatencyMS, r.MB, r.Spread)
	}
	return b.String(), nil
}
