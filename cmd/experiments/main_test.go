package main

import (
	"strings"
	"testing"
	"time"

	"delphi/internal/bench"
)

// TestRunTargetDispatch drives the cheap end of the pipeline: flag
// parsing, target dispatch, and rendering, without heavy simulation.
func TestRunTargetDispatch(t *testing.T) {
	for _, target := range []string{"fig4", "fig5"} {
		text, err := runTarget(target, bench.Quick, 1)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if !strings.Contains(text, target) {
			t.Errorf("%s: rendering lacks the figure name:\n%s", target, text)
		}
	}
	if _, err := runTarget("nope", bench.Quick, 1); err == nil {
		t.Error("unknown target: want error")
	}
	if err := run([]string{"-scale", "warp9"}); err == nil {
		t.Error("bad scale flag: want error")
	}
	if err := run([]string{"-backend", "warp", "fig4"}); err == nil {
		t.Error("bad backend flag: want error")
	}
	t.Cleanup(func() { _ = bench.SetDefaultBackend("") })
}

// TestBackendsTarget drives the execution-backend axis end to end: the
// cross-backend validator must pass and the rendered matrix must show both
// sim and live cells, with wall time only on the latter.
func TestBackendsTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster harness test")
	}
	text, err := runTarget("backends", bench.Quick, 1)
	if err != nil {
		t.Fatalf("backends target: %v", err)
	}
	for _, want := range []string{"cross-backend validation", "delphi", "fin", "abraham", "dolev",
		"slow-f", "jitter-storm", "/be=live", "wall(ms)"} {
		if !strings.Contains(text, want) {
			t.Errorf("backends output lacks %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "FAIL") {
		t.Errorf("backends output reports a failed check:\n%s", text)
	}
}

// TestBackendFlagRetargetsWorkloads pins -backend live on an existing
// target: the matrix must execute on the live cluster (wall-clock
// latencies, so no byte-identity claim — just success and sane rendering).
func TestBackendFlagRetargetsWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster harness test")
	}
	t.Cleanup(func() { _ = bench.SetDefaultBackend("") })
	if err := run([]string{"-backend", "live", "-scale", "quick", "matrix"}); err != nil {
		t.Fatalf("-backend live matrix: %v", err)
	}
}

// TestPaperScaleSmoke exercises the experiments pipeline at the paper's
// full sizing end to end — the scale CI never used to touch. Table II
// (Delphi at n=64 under the three input conditions) is the cheapest
// paper-scale simulation target; Figs. 4/5 ride along to cover the
// figure-rendering path at their full (scale-independent) corpus sizes.
// The test is timed: the engine plus the BinAA hot-path representation
// keep it well under the budget, and a regression that re-serialises
// trials or bloats the simulator shows up here first.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke (several seconds per target)")
	}
	const budget = 5 * time.Minute
	start := time.Now()
	for _, target := range []string{"fig4", "fig5", "table2"} {
		text, err := runTarget(target, bench.Paper, 1)
		if err != nil {
			t.Fatalf("paper-scale %s: %v", target, err)
		}
		if strings.TrimSpace(text) == "" {
			t.Fatalf("paper-scale %s: empty rendering", target)
		}
		t.Logf("%s done at %s", target, time.Since(start).Round(time.Millisecond))
	}
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("paper-scale smoke took %s, budget %s", elapsed.Round(time.Second), budget)
	}
}

// TestAdversaryTargetDeterministic drives the acceptance criterion for the
// adversary axis end to end: `-run adversary` sweeps the named DelayRule
// presets across Delphi and FIN, and its rendered output is byte-identical
// across reruns and across worker counts.
func TestAdversaryTargetDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness test")
	}
	t.Cleanup(func() { bench.SetDefaultWorkers(0) })
	bench.SetDefaultWorkers(1)
	first, err := runTarget("adversary", bench.Quick, 1)
	if err != nil {
		t.Fatalf("adversary target: %v", err)
	}
	for _, name := range []string{"none", "slow-f", "gray", "partition", "coin-rush", "jitter-storm",
		"delphi", "fin"} {
		if !strings.Contains(first, name) {
			t.Errorf("adversary sweep output lacks %q:\n%s", name, first)
		}
	}
	for _, workers := range []int{1, 4, 16} {
		bench.SetDefaultWorkers(workers)
		again, err := runTarget("adversary", bench.Quick, 1)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if again != first {
			t.Errorf("workers=%d: adversary sweep output differs from sequential run:\n%s\nvs\n%s",
				workers, again, first)
		}
	}
}

// TestServiceTarget drives `-run service` end to end on the sim backend:
// the deterministic service model must render its full report, and reruns
// at different worker counts must render it byte-identically.
func TestServiceTarget(t *testing.T) {
	t.Cleanup(func() { bench.SetDefaultWorkers(0) })
	bench.SetDefaultWorkers(1)
	first, err := runTarget("service", bench.Quick, 1)
	if err != nil {
		t.Fatalf("service target: %v", err)
	}
	for _, want := range []string{"service backend=sim", "rounds:", "occupancy:",
		"throughput:", "latency ms:", "staleness ms:"} {
		if !strings.Contains(first, want) {
			t.Errorf("service output lacks %q:\n%s", want, first)
		}
	}
	for _, workers := range []int{4, 16} {
		bench.SetDefaultWorkers(workers)
		again, err := runTarget("service", bench.Quick, 1)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if again != first {
			t.Errorf("workers=%d: service report differs from sequential run:\n%s\nvs\n%s",
				workers, again, first)
		}
	}
	// The service flags reach the config: a bad arrival law is rejected.
	svcFlags.arrivals = "fractal"
	t.Cleanup(func() { svcFlags.arrivals = "poisson" })
	if _, err := runTarget("service", bench.Quick, 1); err == nil {
		t.Error("bad -service-arrivals: want error")
	}
}

// TestRunFlagSelectsTargets pins the -run flag: flag targets compose with
// positional ones (both must run) and junk is rejected.
func TestRunFlagSelectsTargets(t *testing.T) {
	if err := run([]string{"-run", "fig4", "fig5"}); err != nil {
		t.Errorf("-run fig4 + positional fig5: %v", err)
	}
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("-run nope: want error")
	}
	// A junk positional target must still error when -run is set — i.e. the
	// flag must not swallow the positional list.
	if err := run([]string{"-run", "fig4", "nope"}); err == nil {
		t.Error("-run fig4 with junk positional: want error")
	}
}
