// Package delphi is the public API of this repository: a Go implementation
// of Delphi (Bandarupalli et al., DSN 2024), a deterministic, signature-free
// asynchronous approximate-agreement protocol for distributed oracles and
// fault-tolerant cyber-physical systems, together with the baselines,
// simulation testbeds, and application layers from the paper's evaluation.
//
// An n = 3t+1 system of nodes, each holding a real-valued measurement of a
// common quantity (a price, a location coordinate, a temperature), agrees on
// outputs that are within ε of each other (ε-agreement) and within
// max(ρ0, δ) of the honest input range (relaxed min-max validity), using
// O(n²) bits per round and no cryptography beyond authenticated channels.
//
// Quick start — simulate a 4-node oracle cluster:
//
//	cfg := delphi.Config{
//		Config: delphi.System{N: 4, F: 1},
//		Params: delphi.Params{S: 0, E: 100_000, Rho0: 2, Delta: 256, Eps: 2},
//	}
//	report, err := delphi.Simulate(delphi.SimSpec{
//		Config: cfg,
//		Inputs: []float64{50_000, 50_004, 50_001, 50_003},
//		Env:    delphi.EnvAWS,
//		Seed:   1,
//	})
//
// Or run a live in-process cluster over authenticated channels:
//
//	outs, err := delphi.RunLive(ctx, cfg, inputs)
//
// Delta calibration from a noise model (§IV-D of the paper):
//
//	cal, err := delphi.CalibrateDelta(delphi.NoiseNormal(0, 10), n, 30)
package delphi

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"delphi/internal/codec"
	"delphi/internal/core"
	"delphi/internal/dist"
	"delphi/internal/dora"
	"delphi/internal/evt"
	"delphi/internal/node"
	"delphi/internal/runtime"
	"delphi/internal/sim"
)

// System identifies the fault model: n nodes, up to F Byzantine.
type System = node.Config

// Params are Delphi's protocol parameters (input space, level-0 separator,
// maximum honest range Δ, agreement distance ε). See the paper's
// Algorithm 2.
type Params = core.Params

// Config combines the system and the protocol parameters.
type Config = core.Config

// Result is one node's protocol output with per-level diagnostics.
type Result = core.Result

// Certificate is the DORA layer's attested output: a rounded value carrying
// t+1 ed25519 signatures.
type Certificate = dora.Certificate

// Environment selects a simulated testbed.
type Environment int

// The available simulation environments.
const (
	// EnvLocal is a fast, deterministic environment for tests.
	EnvLocal Environment = iota + 1
	// EnvAWS models the paper's geo-distributed AWS testbed
	// (latency-dominated).
	EnvAWS
	// EnvCPS models the paper's Raspberry-Pi testbed (bandwidth- and
	// compute-dominated).
	EnvCPS
)

func (e Environment) simEnv() (sim.Environment, error) {
	switch e {
	case EnvLocal:
		return sim.Local(), nil
	case EnvAWS:
		return sim.AWS(), nil
	case EnvCPS:
		return sim.CPS(), nil
	default:
		return sim.Environment{}, fmt.Errorf("delphi: unknown environment %d", e)
	}
}

// SimSpec describes one simulated protocol run.
type SimSpec struct {
	// Config is the protocol configuration.
	Config Config
	// Inputs are the per-node measurements; use NaN for a crashed node.
	Inputs []float64
	// Env selects the simulated testbed (default EnvLocal).
	Env Environment
	// Seed drives all simulation randomness.
	Seed int64
}

// NodeReport is one node's outcome in a SimReport.
type NodeReport struct {
	// ID is the node.
	ID int
	// Crashed reports whether the node was configured as crashed.
	Crashed bool
	// Result is the node's protocol result (zero for crashed nodes).
	Result Result
	// DecidedAt is the virtual time of the node's output.
	DecidedAt time.Duration
}

// SimReport summarises a simulated run.
type SimReport struct {
	// Nodes holds the per-node outcomes.
	Nodes []NodeReport
	// Latency is the time the slowest honest node took to decide.
	Latency time.Duration
	// TotalBytes is the total bytes sent on the wire (MACs included).
	TotalBytes int64
	// TotalMsgs is the total number of messages sent.
	TotalMsgs int
	// Spread is max-min over honest outputs (must be < ε).
	Spread float64
}

// Simulate runs Delphi in the virtual-time simulator and reports latency,
// bandwidth, and agreement quality.
func Simulate(spec SimSpec) (*SimReport, error) {
	if err := spec.Config.Validate(); err != nil {
		return nil, err
	}
	if len(spec.Inputs) != spec.Config.N {
		return nil, fmt.Errorf("delphi: %d inputs for n=%d", len(spec.Inputs), spec.Config.N)
	}
	if spec.Env == 0 {
		spec.Env = EnvLocal
	}
	env, err := spec.Env.simEnv()
	if err != nil {
		return nil, err
	}
	procs := make([]node.Process, spec.Config.N)
	for i, v := range spec.Inputs {
		if math.IsNaN(v) {
			continue
		}
		d, err := core.New(spec.Config, v)
		if err != nil {
			return nil, fmt.Errorf("delphi: node %d: %w", i, err)
		}
		procs[i] = d
	}
	runner, err := sim.NewRunner(spec.Config.Config, env, spec.Seed, procs)
	if err != nil {
		return nil, err
	}
	res := runner.Run()

	report := &SimReport{
		Nodes:      make([]NodeReport, spec.Config.N),
		TotalBytes: res.TotalBytes,
		TotalMsgs:  res.TotalMsgs,
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < spec.Config.N; i++ {
		nr := NodeReport{ID: i, Crashed: procs[i] == nil}
		if !nr.Crashed {
			st := res.Stats[i]
			if len(st.Output) == 0 {
				return nil, fmt.Errorf("delphi: node %d produced no output (liveness violation?)", i)
			}
			r, ok := st.Output[len(st.Output)-1].(core.Result)
			if !ok {
				return nil, fmt.Errorf("delphi: node %d output type %T", i, st.Output[0])
			}
			nr.Result = r
			nr.DecidedAt = st.OutputAt
			if st.OutputAt > report.Latency {
				report.Latency = st.OutputAt
			}
			lo = math.Min(lo, r.Output)
			hi = math.Max(hi, r.Output)
		}
		report.Nodes[i] = nr
	}
	report.Spread = hi - lo
	return report, nil
}

// RunLive runs an in-process cluster of Delphi nodes over real goroutines
// and HMAC-authenticated channels and returns the per-node results. Crashed
// nodes are expressed with NaN inputs.
func RunLive(ctx context.Context, cfg Config, inputs []float64) ([]*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(inputs) != cfg.N {
		return nil, fmt.Errorf("delphi: %d inputs for n=%d", len(inputs), cfg.N)
	}
	procs := make([]node.Process, cfg.N)
	for i, v := range inputs {
		if math.IsNaN(v) {
			continue
		}
		d, err := core.New(cfg, v)
		if err != nil {
			return nil, fmt.Errorf("delphi: node %d: %w", i, err)
		}
		procs[i] = d
	}
	reg, err := codec.NewRegistry()
	if err != nil {
		return nil, err
	}
	res, err := runtime.RunCluster(ctx, cfg.Config, procs, []byte("delphi-live-master"), reg)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, cfg.N)
	for i := range out {
		if v := res.Final(i); v != nil {
			if r, ok := v.(core.Result); ok {
				out[i] = &r
			}
		}
	}
	return out, nil
}

// RunLiveOracles runs an in-process DORA oracle cluster: Delphi followed by
// the ε-rounding and t+1-signature certificate round. It returns the
// per-node certificates.
func RunLiveOracles(ctx context.Context, cfg Config, inputs []float64, pkiSeed uint64) ([]*Certificate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(inputs) != cfg.N {
		return nil, fmt.Errorf("delphi: %d inputs for n=%d", len(inputs), cfg.N)
	}
	keys := dora.GenKeyrings(cfg.N, pkiSeed)
	procs := make([]node.Process, cfg.N)
	for i, v := range inputs {
		if math.IsNaN(v) {
			continue
		}
		p, err := dora.New(cfg, keys[i], v)
		if err != nil {
			return nil, fmt.Errorf("delphi: oracle %d: %w", i, err)
		}
		procs[i] = p
	}
	reg, err := codec.NewRegistry()
	if err != nil {
		return nil, err
	}
	res, err := runtime.RunCluster(ctx, cfg.Config, procs, []byte("delphi-dora-master"), reg)
	if err != nil {
		return nil, err
	}
	out := make([]*Certificate, cfg.N)
	for i := range out {
		if v := res.Final(i); v != nil {
			if c, ok := v.(dora.Certificate); ok {
				out[i] = &c
			}
		}
	}
	return out, nil
}

// VerifyCertificate checks a DORA certificate against the PKI derived from
// pkiSeed (the same value passed to RunLiveOracles).
func VerifyCertificate(cert *Certificate, n, f int, pkiSeed uint64) error {
	keys := dora.GenKeyrings(n, pkiSeed)
	return cert.Verify(keys[0].Pubs, f)
}

// RunLiveVector runs multi-dimensional approximate agreement the way the
// paper's drone application does (§VI-B): one independent Delphi instance
// per coordinate. points[i] is node i's d-dimensional measurement (all
// nodes must use the same d); the result is each node's agreed point.
// Honest outputs agree within ε per coordinate.
func RunLiveVector(ctx context.Context, cfg Config, points [][]float64) ([][]float64, error) {
	if len(points) != cfg.N {
		return nil, fmt.Errorf("delphi: %d points for n=%d", len(points), cfg.N)
	}
	dims := -1
	for i, p := range points {
		if dims == -1 {
			dims = len(p)
		}
		if len(p) != dims {
			return nil, fmt.Errorf("delphi: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	if dims <= 0 {
		return nil, fmt.Errorf("delphi: empty points")
	}
	out := make([][]float64, cfg.N)
	for i := range out {
		out[i] = make([]float64, dims)
	}
	for d := 0; d < dims; d++ {
		coord := make([]float64, cfg.N)
		for i := range points {
			coord[i] = points[i][d]
		}
		results, err := RunLive(ctx, cfg, coord)
		if err != nil {
			return nil, fmt.Errorf("delphi: dimension %d: %w", d, err)
		}
		for i, r := range results {
			if r == nil {
				out[i] = nil
				continue
			}
			if out[i] != nil {
				out[i][d] = r.Output
			}
		}
	}
	return out, nil
}

// Noise models for Delta calibration.

// NoiseModel is an input-noise distribution for CalibrateDelta.
type NoiseModel = dist.Distribution

// NoiseNormal returns a Gaussian noise model.
func NoiseNormal(mu, sigma float64) NoiseModel { return dist.Normal{Mu: mu, Sigma: sigma} }

// NoiseGamma returns a Gamma noise model.
func NoiseGamma(shape, scale float64) NoiseModel { return dist.Gamma{Shape: shape, Scale: scale} }

// NoiseLognormal returns a Lognormal noise model.
func NoiseLognormal(mu, sigma float64) NoiseModel { return dist.Lognormal{Mu: mu, Sigma: sigma} }

// NoisePareto returns a fat-tailed Pareto noise model.
func NoisePareto(xm, alpha float64) NoiseModel { return dist.Pareto{Xm: xm, Alpha: alpha} }

// Calibration reports a Δ estimate; see the paper's §IV-D.
type Calibration = evt.Calibration

// CalibrateDelta estimates Δ for an n-node system whose measurements carry
// noise from the given model, at statistical security lambda bits
// (P(δ > Δ) <= 2^-lambda). It mirrors the paper's procedure: Monte-Carlo
// range sampling, Gumbel-vs-Fréchet extreme-value fits, quantile readout.
func CalibrateDelta(noise NoiseModel, n, lambda int) (Calibration, error) {
	rng := rand.New(rand.NewSource(0x0de1f1))
	return evt.Calibrate(noise, n, lambda, 4000, rng)
}
