package delphi_test

import (
	"context"
	"math"
	"testing"
	"time"

	"delphi"
)

func apiConfig(n, f int) delphi.Config {
	return delphi.Config{
		Config: delphi.System{N: n, F: f},
		Params: delphi.Params{S: 0, E: 100000, Rho0: 2, Delta: 256, Eps: 2},
	}
}

func TestSimulateQuickstart(t *testing.T) {
	cfg := apiConfig(4, 1)
	rep, err := delphi.Simulate(delphi.SimSpec{
		Config: cfg,
		Inputs: []float64{50000, 50004, 50001, 50003},
		Env:    delphi.EnvAWS,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spread >= cfg.Params.Eps {
		t.Errorf("spread %g >= eps", rep.Spread)
	}
	if rep.Latency <= 0 {
		t.Error("zero latency")
	}
	if rep.TotalBytes <= 0 || rep.TotalMsgs <= 0 {
		t.Error("no traffic accounted")
	}
	for _, nr := range rep.Nodes {
		if nr.Crashed {
			t.Errorf("node %d unexpectedly crashed", nr.ID)
		}
		if nr.Result.Output < 50000-4-2 || nr.Result.Output > 50004+4+2 {
			t.Errorf("node %d output %g outside relaxed range", nr.ID, nr.Result.Output)
		}
	}
}

func TestSimulateWithCrashes(t *testing.T) {
	cfg := apiConfig(7, 2)
	rep, err := delphi.Simulate(delphi.SimSpec{
		Config: cfg,
		Inputs: []float64{500, math.NaN(), 502, 501, math.NaN(), 503, 500.5},
		Env:    delphi.EnvCPS,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for _, nr := range rep.Nodes {
		if nr.Crashed {
			crashed++
		}
	}
	if crashed != 2 {
		t.Errorf("crashed = %d, want 2", crashed)
	}
	if rep.Spread >= cfg.Params.Eps {
		t.Errorf("spread %g >= eps", rep.Spread)
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := apiConfig(4, 1)
	if _, err := delphi.Simulate(delphi.SimSpec{Config: cfg, Inputs: []float64{1, 2}}); err == nil {
		t.Error("input-count mismatch accepted")
	}
	bad := cfg
	bad.Params.Eps = -1
	if _, err := delphi.Simulate(delphi.SimSpec{Config: bad, Inputs: []float64{1, 2, 3, 4}}); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := delphi.Simulate(delphi.SimSpec{Config: cfg, Inputs: []float64{1, 2, 3, 4}, Env: delphi.Environment(99)}); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestRunLive(t *testing.T) {
	cfg := apiConfig(4, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := delphi.RunLive(ctx, cfg, []float64{40000, 40002, 40001, 40003})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, r := range results {
		if r == nil {
			t.Fatalf("node %d: nil result", i)
		}
		lo = math.Min(lo, r.Output)
		hi = math.Max(hi, r.Output)
	}
	if hi-lo >= cfg.Params.Eps {
		t.Errorf("spread %g >= eps", hi-lo)
	}
}

func TestRunLiveOraclesCertificates(t *testing.T) {
	cfg := apiConfig(4, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	certs, err := delphi.RunLiveOracles(ctx, cfg, []float64{40000, 40002, 40001, 40003}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range certs {
		if c == nil {
			t.Fatalf("oracle %d: nil certificate", i)
		}
		if err := delphi.VerifyCertificate(c, cfg.N, cfg.F, 42); err != nil {
			t.Errorf("oracle %d: %v", i, err)
		}
	}
}

func TestCalibrateDelta(t *testing.T) {
	cal, err := delphi.CalibrateDelta(delphi.NoiseNormal(0, 10), 64, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !cal.ThinTailed {
		t.Error("normal noise should calibrate as thin-tailed")
	}
	if cal.Delta <= 0 {
		t.Error("non-positive Delta")
	}
}
