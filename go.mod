module delphi

go 1.24
