package delphi_test

import (
	"context"
	"math"
	"testing"
	"time"

	"delphi"
	"delphi/internal/feeds"
)

// TestEndToEndOraclePipeline walks the paper's full oracle pipeline through
// the public API: calibrate Δ from the noise model, take one synthetic
// multi-exchange price snapshot, run the live DORA oracles, and verify that
// every certificate attests the same (or an adjacent) ε-multiple within the
// relaxed honest range.
func TestEndToEndOraclePipeline(t *testing.T) {
	cal, err := delphi.CalibrateDelta(delphi.NoisePareto(6, 4.41), 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Delta < cal.MeanRange || cal.Delta > 100*cal.MeanRange {
		t.Fatalf("implausible calibration: %+v", cal)
	}

	market, err := feeds.NewMarket(feeds.DefaultConfig(), 77)
	if err != nil {
		t.Fatal(err)
	}
	snap := market.Tick(0)

	cfg := delphi.Config{
		Config: delphi.System{N: 10, F: 3},
		Params: delphi.Params{S: 0, E: 200_000, Rho0: 2, Delta: cal.Delta, Eps: 2},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	certs, err := delphi.RunLiveOracles(ctx, cfg, snap.Quotes, 11)
	if err != nil {
		t.Fatal(err)
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, q := range snap.Quotes {
		lo = math.Min(lo, q)
		hi = math.Max(hi, q)
	}
	relax := math.Max(cfg.Params.Rho0, hi-lo) + cfg.Params.Eps
	values := map[float64]bool{}
	for i, c := range certs {
		if c == nil {
			t.Fatalf("oracle %d: no certificate", i)
		}
		if err := delphi.VerifyCertificate(c, cfg.N, cfg.F, 11); err != nil {
			t.Errorf("oracle %d: %v", i, err)
		}
		if c.Value < lo-relax || c.Value > hi+relax {
			t.Errorf("oracle %d attests %g outside [%g, %g]", i, c.Value, lo-relax, hi+relax)
		}
		values[c.Value] = true
	}
	if len(values) > 2 {
		t.Errorf("%d distinct attested values, want <= 2", len(values))
	}
}

// TestRunLiveVector checks the multi-dimensional helper used by the drone
// application: per-coordinate ε-agreement on 2-D points.
func TestRunLiveVector(t *testing.T) {
	cfg := delphi.Config{
		Config: delphi.System{N: 4, F: 1},
		Params: delphi.Params{S: 0, E: 2000, Rho0: 0.5, Delta: 50, Eps: 0.5},
	}
	points := [][]float64{
		{512.3, 847.9},
		{513.1, 848.4},
		{511.8, 847.2},
		{512.9, 848.8},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	agreed, err := delphi.RunLiveVector(ctx, cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 2; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range agreed {
			if agreed[i] == nil {
				t.Fatalf("node %d: nil point", i)
			}
			lo = math.Min(lo, agreed[i][d])
			hi = math.Max(hi, agreed[i][d])
		}
		if hi-lo >= cfg.Params.Eps {
			t.Errorf("dimension %d spread %g >= eps", d, hi-lo)
		}
	}
	// Dimension mismatch must be rejected.
	bad := [][]float64{{1}, {1, 2}, {1}, {1}}
	if _, err := delphi.RunLiveVector(ctx, cfg, bad); err == nil {
		t.Error("ragged points accepted")
	}
}
