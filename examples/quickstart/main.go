// Quickstart: four nodes approximately agree on a measured value.
//
// Run with:
//
//	go run ./examples/quickstart
//
// Four oracle nodes each hold a slightly different measurement of the same
// quantity; one of them is allowed to be Byzantine (t = 1). The example
// runs them live — goroutine per node over HMAC-authenticated channels —
// and shows that every output lands within ε = 2 of every other and inside
// the (ρ0-relaxed) range of the inputs.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"delphi"
)

func main() {
	cfg := delphi.Config{
		Config: delphi.System{N: 4, F: 1},
		Params: delphi.Params{
			S:     0,       // input space lower bound
			E:     100_000, // input space upper bound
			Rho0:  2,       // level-0 checkpoint spacing (= minimum validity relaxation)
			Delta: 256,     // assumed max honest range (see delphi.CalibrateDelta)
			Eps:   2,       // agreement distance
		},
	}
	inputs := []float64{50_000.8, 50_003.4, 50_001.1, 50_002.9}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results, err := delphi.RunLive(ctx, cfg, inputs)
	if err != nil {
		log.Fatal(err)
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for i, r := range results {
		fmt.Printf("node %d: input %.2f -> output %.4f (r_M=%d rounds)\n",
			i, inputs[i], r.Output, r.Rounds)
		lo = math.Min(lo, r.Output)
		hi = math.Max(hi, r.Output)
	}
	fmt.Printf("spread %.6f (< ε=%.0f: %v)\n", hi-lo, cfg.Params.Eps, hi-lo < cfg.Params.Eps)
}
