// Byzantine fault injection: agreement despite equivocators, spammers, and
// adversarial scheduling.
//
// Run with:
//
//	go run ./examples/byzantine
//
// Ten nodes (t = 3): seven honest with clustered prices, one mute (crashed),
// one equivocating about far-away checkpoints, and one flooding junk
// checkpoints — under the simulated geo-distributed AWS network with an
// adversarial delay rule slowing one honest node's traffic. The honest
// outputs still ε-agree inside the relaxed honest range.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"delphi/internal/binaa"
	"delphi/internal/byz"
	"delphi/internal/core"
	"delphi/internal/node"
	"delphi/internal/sim"
)

func main() {
	const n, f = 10, 3
	cfg := core.Config{
		Config: node.Config{N: n, F: f},
		Params: core.Params{S: 0, E: 100_000, Rho0: 2, Delta: 256, Eps: 2},
	}

	procs := make([]node.Process, n)
	honest := map[int]float64{}
	rng := rand.New(rand.NewSource(99))
	for i := 3; i < n; i++ {
		v := 50_000 + rng.Float64()*30
		d, err := core.New(cfg, v)
		if err != nil {
			log.Fatal(err)
		}
		procs[i] = d
		honest[i] = v
	}
	procs[0] = &byz.Mute{}       // crashed
	procs[1] = &byz.Equivocator{ // lies differently to each half
		CheckA: binaa.IID{Level: 0, K: 5_000},
		CheckB: binaa.IID{Level: 0, K: 20_000},
	}
	procs[2] = &byz.Spammer{ // floods junk checkpoints
		Rng:      rand.New(rand.NewSource(1)),
		Levels:   cfg.Params.Levels(),
		KMin:     10_000,
		KMax:     30_000,
		PerRound: 4,
	}

	// Adversarial scheduler: node 3's messages crawl.
	slow := func(_ time.Duration, from, to node.ID, _ node.Message) time.Duration {
		if from == 3 {
			return 250 * time.Millisecond
		}
		return 0
	}

	runner, err := sim.NewRunner(cfg.Config, sim.AWS(), 7, procs, sim.WithDelayRule(slow))
	if err != nil {
		log.Fatal(err)
	}
	res := runner.Run()

	m, M := math.Inf(1), math.Inf(-1)
	for _, v := range honest {
		m = math.Min(m, v)
		M = math.Max(M, v)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 3; i < n; i++ {
		st := res.Stats[i]
		if len(st.Output) == 0 {
			log.Fatalf("node %d produced no output", i)
		}
		r := st.Output[len(st.Output)-1].(core.Result)
		fmt.Printf("node %d: input %.3f -> output %.4f (decided at %v)\n",
			i, honest[i], r.Output, st.OutputAt.Round(time.Millisecond))
		lo = math.Min(lo, r.Output)
		hi = math.Max(hi, r.Output)
	}
	relax := math.Max(cfg.Params.Rho0, M-m)
	fmt.Printf("honest inputs [%.3f, %.3f]; outputs [%.4f, %.4f]\n", m, M, lo, hi)
	fmt.Printf("spread %.5f < ε=%.0f: %v;  within relaxed validity: %v\n",
		hi-lo, cfg.Params.Eps, hi-lo < cfg.Params.Eps,
		lo >= m-relax && hi <= M+relax)
	fmt.Printf("simulated traffic: %.2f MB in %d messages, virtual time %v\n",
		float64(res.TotalBytes)/1e6, res.TotalMsgs, res.Time.Round(time.Millisecond))
}
