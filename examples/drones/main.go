// Drone swarm: agreeing on a detected vehicle's location (the paper's CPS
// application, §VI-B).
//
// Run with:
//
//	go run ./examples/drones
//
// Seven surveillance drones detect the same car with an EfficientDet-class
// detector (Gamma-distributed IoU) and GPS error. Each coordinate runs its
// own Delphi instance, exactly as the paper describes for 2-D inputs, with
// the CPS parameterisation Δ = 50m, ρ0 = ε = 0.5m.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"delphi"
	"delphi/internal/vision"
)

func main() {
	const n, f = 7, 2
	target := vision.Point{X: 512.3, Y: 847.9}
	model := vision.DefaultModel()
	rng := rand.New(rand.NewSource(45))
	estimates := model.DroneInputs(n, target, rng)

	cfg := delphi.Config{
		Config: delphi.System{N: n, F: f},
		Params: delphi.Params{S: 0, E: 2000, Rho0: 0.5, Delta: 50, Eps: 0.5},
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, p := range estimates {
		xs[i], ys[i] = p.X, p.Y
		fmt.Printf("drone %d estimate (%.2f, %.2f), error %.2fm\n",
			i, p.X, p.Y, p.Distance(target))
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	// Two instances of Delphi, one per coordinate (paper §VI-B).
	xouts, err := delphi.RunLive(ctx, cfg, xs)
	if err != nil {
		log.Fatal(err)
	}
	youts, err := delphi.RunLive(ctx, cfg, ys)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < n; i++ {
		agreed := vision.Point{X: xouts[i].Output, Y: youts[i].Output}
		fmt.Printf("drone %d agreed  (%.3f, %.3f), %.2fm from the true car\n",
			i, agreed.X, agreed.Y, agreed.Distance(target))
	}
	spread := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := math.Abs(xouts[i].Output - xouts[j].Output)
			dy := math.Abs(youts[i].Output - youts[j].Output)
			spread = math.Max(spread, math.Max(dx, dy))
		}
	}
	fmt.Printf("max per-axis disagreement between drones: %.4fm (ε = %.1fm)\n",
		spread, cfg.Params.Eps)
}
