// Oracle network: a Bitcoin price feed attested for a blockchain.
//
// Run with:
//
//	go run ./examples/oracle
//
// Ten oracle nodes each query a (synthetic) cryptocurrency exchange. The
// example walks the paper's full §V/§VI-A pipeline:
//
//  1. calibrate Δ from historical per-minute price ranges with extreme-value
//     theory (delphi.CalibrateDelta),
//  2. run Delphi to ε-agree on the price, and
//  3. run the DORA round — ε-rounding plus t+1 ed25519 signatures — to
//     produce a succinct certificate a smart contract can verify.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"delphi"
	"delphi/internal/feeds"
)

func main() {
	// Synthetic market standing in for Binance/Coinbase/… price feeds.
	market, err := feeds.NewMarket(feeds.DefaultConfig(), 2024)
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate Δ from the per-exchange noise model at λ=30 bits, as the
	// paper does from two weeks of collected ranges (§VI-A derives 2000$).
	cal, err := delphi.CalibrateDelta(delphi.NoisePareto(6, 4.41), 10, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated Δ = %.0f$ (mean δ %.1f$, fit %s, λ=%d)\n",
		cal.Delta, cal.MeanRange, cal.Fit.Name(), cal.Lambda)

	cfg := delphi.Config{
		Config: delphi.System{N: 10, F: 3},
		Params: delphi.Params{S: 0, E: 200_000, Rho0: 2, Delta: cal.Delta, Eps: 2},
	}

	// One price report, as in the paper's once-a-minute cadence.
	snap := market.Tick(0)
	fmt.Printf("true price %.2f$; exchange quotes range δ = %.2f$\n", snap.True, snap.Range())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	certs, err := delphi.RunLiveOracles(ctx, cfg, snap.Quotes, 7)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range certs {
		if c == nil {
			fmt.Printf("oracle %d: no certificate\n", i)
			continue
		}
		if err := delphi.VerifyCertificate(c, cfg.N, cfg.F, 7); err != nil {
			log.Fatalf("oracle %d: bad certificate: %v", i, err)
		}
		fmt.Printf("oracle %d attests %.2f$ with %d signatures (verified)\n",
			i, c.Value, len(c.Signers))
	}
}
