package delphi_test

import (
	"fmt"

	"delphi"
)

// ExampleSimulate runs a four-node oracle cluster in the deterministic
// virtual-time simulator and prints the agreement quality.
func ExampleSimulate() {
	cfg := delphi.Config{
		Config: delphi.System{N: 4, F: 1},
		Params: delphi.Params{S: 0, E: 100_000, Rho0: 2, Delta: 256, Eps: 2},
	}
	report, err := delphi.Simulate(delphi.SimSpec{
		Config: cfg,
		Inputs: []float64{50_000, 50_004, 50_001, 50_003},
		Env:    delphi.EnvLocal,
		Seed:   1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("agreement within eps: %v\n", report.Spread < cfg.Params.Eps)
	fmt.Printf("all nodes decided: %v\n", len(report.Nodes) == 4)
	// Output:
	// agreement within eps: true
	// all nodes decided: true
}

// ExampleParams_Rounds shows how the protocol derives its round count from
// the parameters (Algorithm 2 line 2).
func ExampleParams_Rounds() {
	p := delphi.Params{S: 0, E: 100_000, Rho0: 2, Delta: 2000, Eps: 2}
	fmt.Printf("levels l_M = %d\n", p.Levels())
	fmt.Printf("rounds r_M at n=160: %d\n", p.Rounds(160))
	// Output:
	// levels l_M = 10
	// rounds r_M at n=160: 23
}
