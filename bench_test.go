// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding internal/bench experiment at Quick
// scale (reduced node counts) and reports the headline quantities as custom
// metrics; `cmd/experiments -scale paper` runs the full-size sweeps.
package delphi_test

import (
	"testing"

	"delphi/internal/bench"
	"delphi/internal/core"
	"delphi/internal/sim"
)

// reportSeries publishes each series' last point as a benchmark metric.
func reportSeries(b *testing.B, fig *bench.Figure, unit string) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], sanitizeMetric(s.Label)+"_"+unit)
		}
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '=':
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkTable1 regenerates Table I (convex BA protocol comparison).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(bench.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table II (Delphi under input conditions).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(bench.Quick, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table III (oracle reporting protocols).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(bench.Quick, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4 (Bitcoin range histogram and EVT fits).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Fig4(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MeanValue, "mean_delta_usd")
	}
}

// BenchmarkFig5 regenerates Fig. 5 (IoU histogram and Gamma fit).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Fig5(5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MeanValue, "mean_iou")
	}
}

// BenchmarkFig6a regenerates Fig. 6a (runtime vs n, AWS).
func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig6a(bench.Quick, 6)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, "ms")
	}
}

// BenchmarkFig6b regenerates Fig. 6b (bandwidth vs n, AWS).
func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig6b(bench.Quick, 7)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, "MB")
	}
}

// BenchmarkFig6c regenerates Fig. 6c (runtime vs n, CPS).
func BenchmarkFig6c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig6c(bench.Quick, 8)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, "ms")
	}
}

// BenchmarkFig7 regenerates Fig. 7 (runtime heatmaps, AWS and CPS).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		aws, cps, err := bench.Fig7(bench.Quick, 9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(aws.Seconds[0][0], "aws_corner_s")
		b.ReportMetric(cps.Seconds[0][0], "cps_corner_s")
	}
}

// BenchmarkValidity regenerates the §VI-E validity-relaxation analysis.
func BenchmarkValidity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := bench.Validity(bench.Quick, 10)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reps {
			b.ReportMetric(r.DelphiErr, r.App+"_delphi_err")
			b.ReportMetric(r.BaselineErr, r.App+"_fin_err")
		}
	}
}

// BenchmarkAblationSingleLevel measures the paper's §III-B1 strawman
// (single level, ρ0 = Δ) against multi-level Delphi: same agreement, much
// worse validity relaxation at small δ. The design-choice ablation behind
// Fig. 3.
func BenchmarkAblationSingleLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		single, multi, err := bench.AblationSingleLevel(16, 11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(single.MeanAbsErr, "single_level_abs_err")
		b.ReportMetric(multi.MeanAbsErr, "multi_level_abs_err")
	}
}

// BenchmarkAblationEps sweeps ε: smaller ε buys tighter agreement for more
// rounds (latency). The cost knob called out in DESIGN.md.
func BenchmarkAblationEps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationEps(16, 12)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Spread, r.Name+"_spread")
		}
	}
}

// BenchmarkAblationCompression measures the §II-C delta/bitmap wire
// encoding: bytes on the wire with and without compression.
func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comp, plain, err := bench.AblationCompression(16, 14)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(comp.TotalBytes)/1e6, "compressed_MB")
		b.ReportMetric(float64(plain.TotalBytes)/1e6, "plain_MB")
	}
}

// BenchmarkAblationCoinCost shows the baselines' dependence on threshold-
// coin compute: FIN's latency under pairing-class vs hash-class coin costs
// on CPS-grade hardware. Delphi has no coin at all.
func BenchmarkAblationCoinCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slow, fast, err := bench.AblationCoinCost(16, 13)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(slow.Latency.Seconds(), "fin_pairing_coin_s")
		b.ReportMetric(fast.Latency.Seconds(), "fin_hash_coin_s")
	}
}

// BenchmarkEngineMatrix measures the parallel trial engine end to end: a
// scenario grid (input shapes × Byzantine load, two trials each) expanded
// and fanned across the worker pool. The headline metric is trials/sec —
// the harness' aggregate throughput, which scales with GOMAXPROCS.
func BenchmarkEngineMatrix(b *testing.B) {
	m := bench.Matrix{
		Base: bench.Scenario{
			Protocol: bench.ProtoDelphi,
			N:        16,
			Env:      sim.AWS(),
			Params:   delphiBenchParams(),
			Center:   41000,
			Delta:    20,
			ByzKind:  bench.ByzSpam,
			Trials:   2,
		},
		Shapes:    []bench.InputShape{bench.ShapePinned, bench.ShapeClustered},
		ByzCounts: []int{0, 1},
	}
	trials := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := bench.NewEngine(0).RunMatrix(m, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			trials += c.Agg.Trials
		}
	}
	b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
}

func delphiBenchParams() core.Params {
	return core.Params{S: 0, E: 100000, Rho0: 2, Delta: 256, Eps: 2}
}

// BenchmarkDelphiNodeStep microbenchmarks one node's message-processing
// step in a 16-node cluster (the per-delivery hot path).
func BenchmarkDelphiNodeStep(b *testing.B) {
	st, err := bench.Run(bench.RunSpec{
		Protocol: bench.ProtoDelphi, N: 16, F: 5, Env: sim.Local(), Seed: 1,
		Inputs: bench.OracleInputs(16, 41000, 20, 1),
		Delphi: bench.OracleDefaultParams(),
	})
	if err != nil {
		b.Fatal(err)
	}
	msgs := st.TotalMsgs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := bench.Run(bench.RunSpec{
			Protocol: bench.ProtoDelphi, N: 16, F: 5, Env: sim.Local(), Seed: int64(i),
			Inputs: bench.OracleInputs(16, 41000, 20, int64(i)),
			Delphi: bench.OracleDefaultParams(),
		})
		if err != nil {
			b.Fatal(err)
		}
		msgs += st.TotalMsgs
	}
	b.ReportMetric(float64(msgs)/float64(b.N+1), "msgs_per_run")
}
